module Program = Mlo_ir.Program
module Dependence = Mlo_ir.Dependence
module Cache = Mlo_cachesim.Cache
module Hierarchy = Mlo_cachesim.Hierarchy
module Compiled_trace = Mlo_cachesim.Compiled_trace
module Trace = Mlo_obs.Trace
module Json = Mlo_obs.Json

type reuse_class = Temporal | Spatial | No_reuse

type level = {
  lv_delta : int;
  lv_count : int;
  lv_class : reuse_class;
  lv_realized : bool;
}

type group = {
  g_array : string;
  g_accesses : int list;
  g_levels : level array;
  g_gaps : int array;
  g_lines : float;
  g_misses : float;
  g_exact : bool;
}

type nest = {
  n_name : string;
  n_trips : int;
  n_groups : group list;
  n_lines : float;
  n_misses : float;
  n_exact : bool;
}

type report = {
  r_program : string;
  r_geometry : Cache.geometry;
  r_nests : nest list;
  r_lines : float;
  r_misses : float;
  r_exact : bool;
}

(* ------------------------------------------------------------------ *)
(* Closed-form line counting                                           *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* floor division / non-negative remainder (addresses of out-of-bounds
   programs may go negative; the analysis must not misline them) *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let fmod a b = a - (fdiv a b * b)
let range_lines ~line x s = fdiv (x + s - 1) line - fdiv x line + 1

(* Lines touched by [n] translates (stride [d]) of a set that occupies
   every line its byte range [x, x+s-1] meets.  Requires [d >= s + line]:
   translates are then line-disjoint and the per-translate count depends
   only on the base offset within a line, which is periodic in the
   translate index. *)
let sparse_interval_sum ~line x s d n =
  let r = fmod d line in
  let p = if r = 0 then 1 else line / gcd r line in
  let q = n / p and rem = n mod p in
  let total = ref 0 in
  for i = 0 to min p n - 1 do
    let o = fmod (x + (i * d)) line in
    let cnt = q + if i < rem then 1 else 0 in
    total := !total + (cnt * (((o + s - 1) / line) + 1))
  done;
  !total

type count = {
  cs_lines : float;
  cs_min : int;  (** smallest byte address of the set *)
  cs_span : int;  (** byte extent: max - min + 1 *)
  cs_exact : bool;
}

let cdiv a b = -fdiv (-a) b

(* One stride level over a full line-interval of span [s]: dense strides
   keep the interval, sparse ones are the periodic alignment sum.
   Always exact. *)
let count_single ~line x s (d, n) =
  if d <= s + line - 1 then
    float_of_int (range_lines ~line x ((d * (n - 1)) + s))
  else float_of_int (sparse_interval_sum ~line x s d n)

(* Two sparse strides [d1 <= d2] over a full line-interval of span [s]
   ([d1 >= s + line]): writing [d2 = q*d1 + e] with [|e|] minimal, the
   lattice decomposes into rows [r = i + q*j] at pitch [d1], row [r]
   holding the offsets [e*j] for the j-interval compatible with the two
   trip counts.  When a row's content stays within one pitch the rows
   are sorted intervals and the union is counted row by row, merging
   neighbours that share lines — exact as long as every merged row is
   itself full at line granularity. *)
let two_level ~line x s (d1, n1) (d2, n2) =
  let q = d2 / d1 in
  let q, e =
    let r = d2 - (q * d1) in
    if r * 2 > d1 then (q + 1, r - d1) else (q, r)
  in
  if (abs e * (n2 - 1)) + s > d1 then None
  else begin
    let rmax = n1 - 1 + (q * (n2 - 1)) in
    let total = ref 0.0 and exact = ref true in
    let prev_hi = ref min_int and prev_solid = ref false in
    let byte_min = ref max_int and byte_max = ref min_int in
    for r = 0 to rmax do
      let jlo = max 0 (cdiv (r - (n1 - 1)) q)
      and jhi = min (n2 - 1) (fdiv r q) in
      if jlo <= jhi then begin
        let cnt = jhi - jlo + 1 in
        let base =
          x + (r * d1) + if e >= 0 then e * jlo else e * jhi
        in
        let span = (abs e * (cnt - 1)) + s in
        let solid = cnt = 1 || abs e <= s + line - 1 in
        let lines =
          if e = 0 || cnt = 1 then float_of_int (range_lines ~line base s)
          else count_single ~line base s (abs e, cnt)
        in
        let lo = fdiv base line and hi = fdiv (base + span - 1) line in
        if lo > !prev_hi then total := !total +. lines
        else if solid && !prev_solid then
          total := !total +. float_of_int (max 0 (hi - !prev_hi))
        else begin
          total := !total +. lines;
          exact := false
        end;
        prev_hi := max !prev_hi hi;
        prev_solid := solid;
        byte_min := min !byte_min base;
        byte_max := max !byte_max (base + span - 1)
      end
    done;
    Some
      {
        cs_lines = !total;
        cs_min = !byte_min;
        cs_span = !byte_max - !byte_min + 1;
        cs_exact = !exact;
      }
  end

(* Distinct cache lines of
     { x + g + sum_l k_l * d_l : 0 <= g < gap_span, 0 <= k_l < n_l }
   where the gap offsets leave no line of their range untouched (the
   caller splits wider offset sets into clusters).  Strides are
   normalized positive and sorted; the ascending dense prefix keeps the
   set full at line granularity, the first sparse stride is an exact
   periodic alignment sum, and later strides multiply exactly when they
   are line-aligned and byte-disjoint (sharing at most the one boundary
   line, which translation by whole lines makes uniform).  The one
   inexact case — an unaligned or aliasing stride over a set that
   already has line-level holes — falls back to
   [min (n * lines) (range bound)] with [cs_exact = false]. *)
let count_set ~line x gap_span levels =
  let base = ref x and norm = ref [] in
  List.iter
    (fun (d, n) ->
      if d <> 0 && n > 1 then
        if d < 0 then begin
          base := !base + (d * (n - 1));
          norm := (-d, n) :: !norm
        end
        else norm := (d, n) :: !norm)
    levels;
  let levels = List.sort compare !norm in
  let x = !base in
  (* fold one more stride into an already-counted (non-interval) set:
     line-aligned byte-disjoint translates multiply exactly (translation
     by whole lines preserves the count; at most the boundary line is
     shared), anything else is bounded by the byte range *)
  let fold_stride (lines, span, exact) (d, n) =
    let reach = d * (n - 1) in
    if fmod d line = 0 && d > span then
      let lines =
        if d >= span + line then float_of_int n *. lines
        else
          let share =
            if fdiv (x + span - 1) line = fdiv (x + d) line then n - 1 else 0
          in
          (float_of_int n *. lines) -. float_of_int share
      in
      (lines, reach + span, exact)
    else
      let new_span = reach + span in
      let bound = float_of_int (range_lines ~line x new_span) in
      (Float.min (float_of_int n *. lines) bound, new_span, false)
  in
  let finish (lines, span, exact) =
    { cs_lines = lines; cs_min = x; cs_span = span; cs_exact = exact }
  in
  let rec dense s = function
    | [] -> finish (float_of_int (range_lines ~line x s), s, true)
    | (d, n) :: rest when d <= s + line - 1 -> dense ((d * (n - 1)) + s) rest
    | rem -> sparse s rem
  and sparse s = function
    | [] -> assert false
    | [ (d, n) ] ->
      finish
        ( float_of_int (sparse_interval_sum ~line x s d n),
          (d * (n - 1)) + s,
          true )
    | (d1, n1) :: (d2, n2) :: rest -> (
      match two_level ~line x s (d1, n1) (d2, n2) with
      | Some c when rest = [] -> c
      | Some c ->
        finish
          (List.fold_left fold_stride (c.cs_lines, c.cs_span, c.cs_exact) rest)
      | None ->
        let first = float_of_int (sparse_interval_sum ~line x s d1 n1) in
        finish
          (List.fold_left fold_stride
             (first, (d1 * (n1 - 1)) + s, true)
             ((d2, n2) :: rest)))
  in
  dense gap_span levels

(* ------------------------------------------------------------------ *)
(* Access groups                                                       *)
(* ------------------------------------------------------------------ *)

type raw_group = {
  rg_array : string;
  rg_members : int list;
  rg_deltas : int array;  (** per level, dead levels (count <= 1) zeroed *)
  rg_counts : int array;
  rg_base : int;  (** leader = smallest addr0 *)
  rg_gaps : int array;  (** sorted distinct offsets, first 0 *)
}

let build_groups (nf : Compiled_trace.nest_form) =
  let tbl = Hashtbl.create 7 in
  let order = ref [] in
  Array.iteri
    (fun k (a : Compiled_trace.access_form) ->
      let deltas =
        Array.mapi
          (fun l d -> if nf.Compiled_trace.form_counts.(l) <= 1 then 0 else d)
          a.Compiled_trace.form_deltas
      in
      let key = (a.Compiled_trace.form_array, Array.to_list deltas) in
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := (k, a.Compiled_trace.form_addr0) :: !cell
      | None ->
        let cell = ref [ (k, a.Compiled_trace.form_addr0) ] in
        Hashtbl.add tbl key cell;
        order := (key, deltas, cell) :: !order)
    nf.Compiled_trace.form_accesses;
  List.rev_map
    (fun ((name, _), deltas, cell) ->
      let members = List.rev !cell in
      let base = List.fold_left (fun m (_, a) -> min m a) max_int members in
      let gaps =
        List.sort_uniq compare (List.map (fun (_, a) -> a - base) members)
      in
      {
        rg_array = name;
        rg_members = List.map fst members;
        rg_deltas = deltas;
        rg_counts = nf.Compiled_trace.form_counts;
        rg_base = base;
        rg_gaps = Array.of_list gaps;
      })
    !order

(* Fold the group's constant offsets into one lattice level when they
   are all multiples [q*d] of a stride with consecutive quotients within
   the trip count: the union of translates is then exactly the lattice
   with that level's count extended.  Returns the adjusted levels. *)
let absorb_gaps levels gaps =
  if Array.length gaps <= 1 then Some levels
  else
    let candidates = List.sort (fun (a, _) (b, _) -> compare b a) levels in
    let fits (d, n) =
      let d' = abs d in
      d' <> 0
      && Array.for_all (fun g -> g mod d' = 0) gaps
      &&
      let qs = Array.map (fun g -> g / d') gaps in
      let ok = ref true in
      Array.iteri (fun i q -> if i > 0 && q - qs.(i - 1) > n then ok := false) qs;
      !ok
    in
    match List.find_opt fits candidates with
    | None -> None
    | Some (d, n) ->
      let qlast = gaps.(Array.length gaps - 1) / abs d in
      Some
        (List.map
           (fun (d', n') -> if d' = d && n' = n then (d', n' + qlast) else (d', n'))
           levels)

(* Distinct lines of the sub-lattice of [g] restricted to the levels
   [keep] admits (plus the group's offset set). *)
let group_count ~line (g : raw_group) ~keep =
  let levels = ref [] in
  Array.iteri
    (fun l d ->
      if keep l && d <> 0 && g.rg_counts.(l) > 1 then
        levels := (d, g.rg_counts.(l)) :: !levels)
    g.rg_deltas;
  let levels = !levels in
  (* offsets in arithmetic progression (any pair is one) are themselves a
     lattice level, so the union is a multi-level lattice counted by
     [count_set] — exact where its closed forms are *)
  let gaps_as_level () =
    let n = Array.length g.rg_gaps in
    if n < 2 then None
    else begin
      let d = g.rg_gaps.(1) - g.rg_gaps.(0) in
      let ok = ref (d > 0) in
      for i = 2 to n - 1 do
        if g.rg_gaps.(i) - g.rg_gaps.(i - 1) <> d then ok := false
      done;
      if !ok then Some (d, n) else None
    end
  in
  match
    match absorb_gaps levels g.rg_gaps with
    | Some _ as r -> r
    | None -> Option.map (fun lv -> lv :: levels) (gaps_as_level ())
  with
  | Some levels -> count_set ~line g.rg_base 1 levels
  | None ->
    (* split the offsets into clusters that stay full at line
       granularity, count each translate of the lattice, and sum;
       exact only when the cluster ranges are line-disjoint *)
    let clusters = ref [] and first = ref g.rg_gaps.(0) and last = ref g.rg_gaps.(0) in
    Array.iteri
      (fun i gp ->
        if i > 0 then
          if gp - !last <= line then last := gp
          else begin
            clusters := (!first, !last) :: !clusters;
            first := gp;
            last := gp
          end)
      g.rg_gaps;
    clusters := (!first, !last) :: !clusters;
    let counts =
      List.rev_map
        (fun (f, l) -> count_set ~line (g.rg_base + f) (l - f + 1) levels)
        !clusters
    in
    let total = List.fold_left (fun a c -> a +. c.cs_lines) 0.0 counts in
    let exact = List.for_all (fun c -> c.cs_exact) counts in
    let disjoint =
      let rec go = function
        | a :: (b :: _ as rest) ->
          fdiv (a.cs_min + a.cs_span - 1) line < fdiv b.cs_min line && go rest
        | _ -> true
      in
      go counts
    in
    let lo = List.fold_left (fun m c -> min m c.cs_min) max_int counts in
    let hi =
      List.fold_left (fun m c -> max m (c.cs_min + c.cs_span - 1)) min_int counts
    in
    let span = hi - lo + 1 in
    if disjoint then
      { cs_lines = total; cs_min = lo; cs_span = span; cs_exact = exact }
    else
      {
        cs_lines = Float.min total (float_of_int (range_lines ~line lo span));
        cs_min = lo;
        cs_span = span;
        cs_exact = false;
      }

(* Compositional estimate of the cache sets a sub-lattice reaches: dense
   strides sweep contiguous line runs, line-aligned sparse strides visit
   [num_sets / gcd] distinct set residues, unaligned ones spread freely. *)
let sets_estimate ~line ~num_sets (g : raw_group) ~keep =
  let gap_span = g.rg_gaps.(Array.length g.rg_gaps - 1) + 1 in
  let f = ref (max 1 (min num_sets ((gap_span + line - 1) / line))) in
  Array.iteri
    (fun l d ->
      let d = abs d and n = g.rg_counts.(l) in
      if keep l && d <> 0 && n > 1 then begin
        let factor =
          if d < line then ((d * (n - 1)) / line) + 1
          else if fmod d line = 0 then begin
            let ls = d / line mod num_sets in
            if ls = 0 then 1 else min n (num_sets / gcd ls num_sets)
          end
          else min n num_sets
        in
        f := min num_sets (!f * factor)
      end)
    g.rg_deltas;
  !f

(* ------------------------------------------------------------------ *)
(* Per-nest miss estimate                                              *)
(* ------------------------------------------------------------------ *)

let classify ~line d =
  if d = 0 then Temporal else if abs d < line then Spatial else No_reuse

(* [group_count] memoized per group.  The result depends on [keep] only
   through the live levels (nonzero delta, trip count > 1) it admits, so
   the key is the keep-set masked to those levels — the realized-reuse
   check then shares every suffix count [inner_lines] already paid for,
   and fully-realized groups share their kept count with the cold one. *)
let memo_group_count ~line (g : raw_group) =
  let depth = Array.length g.rg_deltas in
  let live = ref 0 in
  Array.iteri
    (fun l d -> if d <> 0 && g.rg_counts.(l) > 1 then live := !live lor (1 lsl l))
    g.rg_deltas;
  let live = !live in
  let tbl = Hashtbl.create 8 in
  fun ~keep ->
    let mask = ref 0 in
    for l = 0 to depth - 1 do
      if keep l then mask := !mask lor (1 lsl l)
    done;
    let key = !mask land live in
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
      let c = group_count ~line g ~keep in
      Hashtbl.add tbl key c;
      c

let analyze_nest ~(geometry : Cache.geometry) (nf : Compiled_trace.nest_form) =
  let line = geometry.Cache.line_bytes in
  let num_sets = geometry.Cache.size_bytes / (geometry.Cache.assoc * line) in
  let cap_lines = geometry.Cache.size_bytes / line in
  let depth = Array.length nf.Compiled_trace.form_counts in
  let groups = build_groups nf in
  let counted = List.map (fun g -> (g, memo_group_count ~line g)) groups in
  (* cache-resident footprint (lines) of one execution of the subnest
     strictly inside level [l], all groups together *)
  let inner_lines l =
    List.fold_left
      (fun acc (_, count) -> acc +. (count ~keep:(fun l' -> l' > l)).cs_lines)
      0.0 counted
  in
  let inner = Array.init depth inner_lines in
  (* Two groups of the same array whose byte ranges land on overlapping
     line intervals share lines the per-group counts each claim, so the
     summed distinct-line count is only an upper bound there. *)
  let colds =
    List.map (fun (g, count) -> (g, count, count ~keep:(fun _ -> true))) counted
  in
  let overlaps_sibling g c =
    List.exists
      (fun (g', _, c') ->
        g' != g
        && g'.rg_array = g.rg_array
        && fdiv c.cs_min line <= fdiv (c'.cs_min + c'.cs_span - 1) line
        && fdiv c'.cs_min line <= fdiv (c.cs_min + c.cs_span - 1) line)
      colds
  in
  let finished =
    List.map
      (fun (g, count, cold) ->
        let levels =
          Array.init depth (fun l ->
              let d = g.rg_deltas.(l) and n = g.rg_counts.(l) in
              let klass = classify ~line d in
              let realized =
                match klass with
                | No_reuse -> true
                | Temporal | Spatial ->
                  n <= 1
                  || inner.(l) <= float_of_int cap_lines
                     && (count ~keep:(fun l' -> l' > l)).cs_lines
                        <= float_of_int
                             (geometry.Cache.assoc
                             * sets_estimate ~line ~num_sets g ~keep:(fun l' ->
                                   l' > l))
              in
              { lv_delta = d; lv_count = n; lv_class = klass; lv_realized = realized })
        in
        let factor =
          Array.fold_left
            (fun acc lv ->
              if lv.lv_class <> No_reuse && not lv.lv_realized && lv.lv_count > 1
              then acc *. float_of_int lv.lv_count
              else acc)
            1.0 levels
        in
        let kept =
          count ~keep:(fun l ->
              let lv = levels.(l) in
              lv.lv_class = No_reuse || lv.lv_realized)
        in
        let misses = Float.max cold.cs_lines (factor *. kept.cs_lines) in
        {
          g_array = g.rg_array;
          g_accesses = g.rg_members;
          g_levels = levels;
          g_gaps = g.rg_gaps;
          g_lines = cold.cs_lines;
          g_misses = misses;
          g_exact = cold.cs_exact && factor = 1.0 && not (overlaps_sibling g cold);
        })
      colds
  in
  let trips = Array.fold_left ( * ) 1 nf.Compiled_trace.form_counts in
  {
    n_name = nf.Compiled_trace.form_nest;
    n_trips = trips;
    n_groups = finished;
    n_lines = List.fold_left (fun a g -> a +. g.g_lines) 0.0 finished;
    n_misses = List.fold_left (fun a g -> a +. g.g_misses) 0.0 finished;
    n_exact = List.for_all (fun g -> g.g_exact) finished;
  }

(* ------------------------------------------------------------------ *)
(* Cross-nest warm reuse                                               *)
(* ------------------------------------------------------------------ *)

(* One array's touch in one nest, summarized for residency tracking. *)
type touch = {
  t_clock : float;
      (** lines streamed by the program before the touching nest began —
          the worst-case reuse distance includes that nest's own
          traffic *)
  t_lines : float;
  t_min : int;
  t_max : int;
  t_sig : (int * int array * int array) list;  (** base, deltas, gaps *)
  t_exact : bool;
  t_realized : bool;
}

let array_touches ~line nest_groups =
  let tbl = Hashtbl.create 7 in
  List.iter
    (fun (rg, g) ->
      let c = group_count ~line rg ~keep:(fun _ -> true) in
      let prev =
        match Hashtbl.find_opt tbl rg.rg_array with
        | Some t -> t
        | None ->
          {
            t_clock = 0.0;
            t_lines = 0.0;
            t_min = max_int;
            t_max = min_int;
            t_sig = [];
            t_exact = true;
            t_realized = true;
          }
      in
      Hashtbl.replace tbl rg.rg_array
        {
          prev with
          t_lines = prev.t_lines +. g.g_lines;
          t_min = min prev.t_min c.cs_min;
          t_max = max prev.t_max (c.cs_min + c.cs_span - 1);
          t_sig = (rg.rg_base, rg.rg_deltas, rg.rg_gaps) :: prev.t_sig;
          t_exact = prev.t_exact && g.g_exact;
          t_realized = prev.t_realized && g.g_misses = g.g_lines;
        })
    nest_groups;
  tbl

(* Credit lines still resident from an earlier nest: if fewer lines than
   the cache holds were streamed since the array was last touched and
   both touches realize all their reuse, its overlap with the previous
   range does not miss again.  Identical access structure keeps the
   credit exact (the whole touch repeats); otherwise only the range
   overlap is credited and the estimate is marked approximate. *)
let warm_credit ~line ~cap_lines nests_groups =
  let resident : (string, touch) Hashtbl.t = Hashtbl.create 17 in
  let clock = ref 0.0 in
  List.map
    (fun (n, groups) ->
      let touches = array_touches ~line groups in
      let clock0 = !clock in
      let credit = ref 0.0 and inexact = ref false in
      Hashtbl.iter
        (fun name now ->
          match Hashtbl.find_opt resident name with
          | Some last
            when last.t_realized && now.t_realized
                 && clock0 -. last.t_clock +. now.t_lines
                    <= float_of_int cap_lines ->
            if
              last.t_exact && now.t_exact
              && List.sort compare last.t_sig = List.sort compare now.t_sig
            then credit := !credit +. now.t_lines
            else begin
              let lo = max last.t_min now.t_min
              and hi = min last.t_max now.t_max in
              if lo <= hi then begin
                let overlap =
                  float_of_int (range_lines ~line lo (hi - lo + 1))
                in
                credit :=
                  !credit +. Float.min overlap (Float.min last.t_lines now.t_lines);
                inexact := true
              end
            end
          | _ -> ())
        touches;
      clock := !clock +. n.n_lines;
      Hashtbl.iter
        (fun name now ->
          Hashtbl.replace resident name { now with t_clock = clock0 })
        touches;
      if !credit > 0.0 then
        {
          n with
          n_misses = Float.max 0.0 (n.n_misses -. !credit);
          n_exact = n.n_exact && not !inexact;
        }
      else n)
    nests_groups

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let default_geometry = Hierarchy.paper_config.Hierarchy.l1

let analyze_forms ~geometry ~program nfs =
  let line = geometry.Cache.line_bytes in
  let cap_lines = geometry.Cache.size_bytes / line in
  let nests =
    Array.to_list nfs
    |> List.map (fun nf ->
           let raw = build_groups nf in
           let n = analyze_nest ~geometry nf in
           (n, List.combine raw n.n_groups))
  in
  let nests = warm_credit ~line ~cap_lines nests in
  {
    r_program = program;
    r_geometry = geometry;
    r_nests = nests;
    r_lines = List.fold_left (fun a n -> a +. n.n_lines) 0.0 nests;
    r_misses = List.fold_left (fun a n -> a +. n.n_misses) 0.0 nests;
    r_exact = List.for_all (fun n -> n.n_exact) nests;
  }

let analyze ?(geometry = default_geometry) ?(layouts = fun _ -> None) prog =
  Trace.with_span ~cat:"analysis" "locality"
    ~args:[ ("program", Trace.Str (Program.name prog)) ]
  @@ fun () ->
  let tr = Compiled_trace.compile prog ~layouts in
  analyze_forms ~geometry ~program:(Program.name prog) (Compiled_trace.forms tr)

let permute_form perm (nf : Compiled_trace.nest_form) =
  let open Compiled_trace in
  {
    nf with
    form_counts = Array.map (fun p -> nf.form_counts.(p)) perm;
    form_accesses =
      Array.map
        (fun a ->
          { a with form_deltas = Array.map (fun p -> a.form_deltas.(p)) perm })
        nf.form_accesses;
  }

(* The profiler's staged state plus its query memo.  A profile is a pure
   function of (program, geometry, array, layout); programs are
   immutable and dominance pruning asks the same (array, layout)
   questions every time it sees the same program — a long-running
   optimizer service, or the bench harness re-extracting the same spec,
   re-profiles nothing after the first pass.  Entries are keyed by
   physical program identity and held through a [Weak] slot, so a cache
   entry dies with its program.  One mutex per entry: queries may come
   from worker Domains solving components in parallel. *)
type metric = Misses | Lines

module Profile_key = struct
  type t = string * Mlo_layout.Layout.t * metric

  let equal (a, la, ma) (b, lb, mb) =
    String.equal a b && ma = mb && Mlo_layout.Layout.equal la lb

  let hash (a, l, m) = Hashtbl.hash (a, Mlo_layout.Layout.hash l, m)
end

module Profile_tbl = Hashtbl.Make (Profile_key)

type profile_entry = {
  pe_prog : Program.t Weak.t;
  pe_geometry : Cache.geometry;
  pe_skel : Compiled_trace.skeleton;
  pe_num_nests : int;
  pe_perms : int array list array;  (** per nest: dependence-legal orders *)
  pe_touched : (string, int array) Hashtbl.t;
      (** array name -> indices of the nests referencing it, ascending *)
  pe_tcache : Mlo_cachesim.Address_map.transform_cache;
  pe_profiles : float array Profile_tbl.t;
  pe_lock : Mutex.t;
}

let profile_entries : profile_entry list ref = ref []
let profile_entries_lock = Mutex.create ()

let make_profile_entry ~geometry prog =
  let nests = Program.nests prog in
  let touched = Hashtbl.create 16 in
  Array.iteri
    (fun i n ->
      Array.iter
        (fun a ->
          let name = Mlo_ir.Access.array_name a in
          match Hashtbl.find_opt touched name with
          | Some (j :: _) when j = i -> () (* nest already recorded *)
          | Some idxs -> Hashtbl.replace touched name (i :: idxs)
          | None -> Hashtbl.replace touched name [ i ])
        (Mlo_ir.Loop_nest.accesses n))
    nests;
  let touched_arr = Hashtbl.create (Hashtbl.length touched) in
  Hashtbl.iter
    (fun name idxs ->
      Hashtbl.replace touched_arr name (Array.of_list (List.rev idxs)))
    touched;
  let wp = Weak.create 1 in
  Weak.set wp 0 (Some prog);
  {
    pe_prog = wp;
    pe_geometry = geometry;
    pe_skel = Compiled_trace.skeleton prog;
    pe_num_nests = Array.length nests;
    pe_perms =
      Array.map (fun n -> List.map fst (Dependence.legal_permutations n)) nests;
    pe_touched = touched_arr;
    pe_tcache = Mlo_cachesim.Address_map.transform_cache ();
    pe_profiles = Profile_tbl.create 64;
    pe_lock = Mutex.create ();
  }

let profile_entry ~geometry prog =
  Mutex.protect profile_entries_lock @@ fun () ->
  let alive, found =
    List.fold_left
      (fun (alive, found) e ->
        match Weak.get e.pe_prog 0 with
        | None -> (alive, found) (* program collected: drop the entry *)
        | Some p ->
          let found =
            if found = None && p == prog && e.pe_geometry = geometry then Some e
            else found
          in
          (e :: alive, found))
      ([], None) !profile_entries
  in
  match found with
  | Some e ->
    profile_entries := List.rev alive;
    e
  | None ->
    let e = make_profile_entry ~geometry prog in
    profile_entries := e :: List.rev alive;
    e

let profiler ?(geometry = default_geometry) ?(metric = Misses) prog =
  let entry = profile_entry ~geometry prog in
  fun ~array_name ~layout ->
    Mutex.protect entry.pe_lock @@ fun () ->
    let key = (array_name, layout, metric) in
    let profile =
      match Profile_tbl.find_opt entry.pe_profiles key with
      | Some p -> p
      | None ->
        let profile = Array.make entry.pe_num_nests 0.0 in
        (match Hashtbl.find_opt entry.pe_touched array_name with
        | None -> ()
        | Some idxs ->
          let nfs =
            Compiled_trace.forms_of_nests ~cache:entry.pe_tcache entry.pe_skel
              ~layouts:(fun n ->
                if String.equal n array_name then Some layout else None)
              ~nests:idxs
          in
          Array.iteri
            (fun j nf ->
              profile.(idxs.(j)) <-
                List.fold_left
                  (fun best perm ->
                    let n = analyze_nest ~geometry (permute_form perm nf) in
                    let m =
                      List.fold_left
                        (fun a g ->
                          if String.equal g.g_array array_name then
                            a
                            +.
                            match metric with
                            | Misses -> g.g_misses
                            | Lines -> g.g_lines
                          else a)
                        0.0 n.n_groups
                    in
                    Float.min best m)
                  infinity entry.pe_perms.(idxs.(j)))
            nfs);
        Profile_tbl.replace entry.pe_profiles key profile;
        profile
    in
    Array.copy profile

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let class_string = function
  | Temporal -> "t"
  | Spatial -> "s"
  | No_reuse -> "-"

let reuse_string g =
  String.concat ""
    (Array.to_list
       (Array.map
          (fun lv ->
            let c = class_string lv.lv_class in
            if lv.lv_class <> No_reuse && not lv.lv_realized then
              String.uppercase_ascii c
            else c)
          g.g_levels))

let pp ppf r =
  Format.fprintf ppf "@[<v>locality %s (L1 %dB/%d-way/%dB lines)@,"
    r.r_program r.r_geometry.Cache.size_bytes r.r_geometry.Cache.assoc
    r.r_geometry.Cache.line_bytes;
  List.iter
    (fun n ->
      Format.fprintf ppf "  %s: trips=%d lines=%.0f misses=%.0f%s@," n.n_name
        n.n_trips n.n_lines n.n_misses
        (if n.n_exact then "" else " ~");
      List.iter
        (fun g ->
          Format.fprintf ppf "    %-12s reuse=%s group=%d lines=%.0f misses=%.0f%s@,"
            g.g_array (reuse_string g)
            (List.length g.g_accesses)
            g.g_lines g.g_misses
            (if g.g_exact then "" else " ~"))
        n.n_groups)
    r.r_nests;
  Format.fprintf ppf "  total: lines=%.0f misses=%.0f%s@]" r.r_lines r.r_misses
    (if r.r_exact then "" else " ~")

let class_json = function
  | Temporal -> "temporal"
  | Spatial -> "spatial"
  | No_reuse -> "none"

let to_json r =
  let group_json g =
    Json.Obj
      [
        ("array", Json.Str g.g_array);
        ("accesses", Json.Arr (List.map (fun i -> Json.Num (float_of_int i)) g.g_accesses));
        ( "levels",
          Json.Arr
            (Array.to_list
               (Array.map
                  (fun lv ->
                    Json.Obj
                      [
                        ("delta", Json.Num (float_of_int lv.lv_delta));
                        ("count", Json.Num (float_of_int lv.lv_count));
                        ("reuse", Json.Str (class_json lv.lv_class));
                        ("realized", Json.Bool lv.lv_realized);
                      ])
                  g.g_levels)) );
        ( "gaps",
          Json.Arr
            (Array.to_list
               (Array.map (fun g -> Json.Num (float_of_int g)) g.g_gaps)) );
        ("lines", Json.Num g.g_lines);
        ("misses", Json.Num g.g_misses);
        ("exact", Json.Bool g.g_exact);
      ]
  in
  let nest_json n =
    Json.Obj
      [
        ("nest", Json.Str n.n_name);
        ("trips", Json.Num (float_of_int n.n_trips));
        ("groups", Json.Arr (List.map group_json n.n_groups));
        ("lines", Json.Num n.n_lines);
        ("misses", Json.Num n.n_misses);
        ("exact", Json.Bool n.n_exact);
      ]
  in
  Json.Obj
    [
      ("program", Json.Str r.r_program);
      ( "geometry",
        Json.Obj
          [
            ("size_bytes", Json.Num (float_of_int r.r_geometry.Cache.size_bytes));
            ("assoc", Json.Num (float_of_int r.r_geometry.Cache.assoc));
            ("line_bytes", Json.Num (float_of_int r.r_geometry.Cache.line_bytes));
          ] );
      ("nests", Json.Arr (List.map nest_json r.r_nests));
      ("lines", Json.Num r.r_lines);
      ("misses", Json.Num r.r_misses);
      ("exact", Json.Bool r.r_exact);
    ]
