(** Program-layer static analysis (lint).

    The optimization pipeline assumes well-formed affine programs; this
    pass proves the properties it relies on {e before} network
    extraction, search and simulation, and reports exactly where a
    program falls short:

    - {b bounds} — interval analysis of every {!Mlo_ir.Affine} index
      expression over its nest's loop ranges.  An access whose interval
      can escape [[0, extent)] in some dimension is an [Error] naming
      the nest, the reference, the dimension and the computed range;
      in-bounds accesses are thereby {e proved} safe (index expressions
      are affine and loop bounds are constants, so the interval is
      exact).
    - {b liveness} — a declared array referenced by no nest is a
      [Warning] (dead array); arrays only read (inputs) or only written
      (outputs never read back) are [Info].
    - {b injectivity} — an access matrix with a non-trivial nullspace
      maps distinct iterations to the same element ([Info]: this is
      temporal reuse, and such references demand no layout).
    - {b pinning} — a nest whose exact dependences
      ({!Mlo_ir.Dependence.deps}) reject {e every} alternative loop
      order is pinned to its source order; the diagnosis names the
      responsible reference pair and the blocking distance or direction
      vector ([Info]).  Pairs the Presburger engine proves independent
      no longer pin anything. *)

type t = {
  program : string;
  arrays : int;
  nests : int;
  accesses : int;
  diagnostics : Diagnostic.t list;  (** sorted, most severe first *)
}

val run : Mlo_ir.Program.t -> t
(** Runs all four passes.  Emits one trace span per pass (category
    ["analysis"]) when tracing is enabled. *)

val clean : t -> bool
(** No error-severity diagnostics. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Mlo_obs.Json.t
(** One target object of the [memlayout-analysis/1] schema: fields
    [program], [arrays], [nests], [accesses], [diagnostics]. *)
