(** Cross-check of the static locality analyzer against the exact
    simulator: a standing regression tripwire for both.

    For each target program the closed-form L1 miss estimate
    ({!Locality.analyze}) is compared against the ground truth of
    {!Mlo_cachesim.Simulate.run} on the same hierarchy; a relative error
    beyond the threshold is an [Error]-severity {!Diagnostic} (so the
    shared exit-code contract turns it into a failing CI step), and the
    per-target numbers are kept for display either way.  Run it at small
    (simulation) array sizes — the point is a fast, exact oracle. *)

type target = {
  ct_name : string;
  ct_program : Mlo_ir.Program.t;
  ct_layouts : string -> Mlo_layout.Layout.t option;
}

type entry = {
  ce_name : string;
  ce_estimated : float;  (** static L1 miss estimate *)
  ce_simulated : int;  (** simulated L1 misses *)
  ce_error : float;  (** [|est - sim| / max 1 sim] *)
}

type report = {
  cr_entries : entry list;  (** in target order *)
  cr_threshold : float;
  cr_diagnostics : Diagnostic.t list;  (** sorted, {!Diagnostic.sort} *)
}

val default_threshold : float
(** 0.15 — the repo's acceptance bound for the five suite benchmarks. *)

val run :
  ?config:Mlo_cachesim.Hierarchy.config ->
  ?threshold:float ->
  target list ->
  report
(** Estimate and simulate every target.  [config] defaults to
    {!Mlo_cachesim.Hierarchy.paper_config}; the estimate uses its L1
    geometry. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Mlo_obs.Json.t
