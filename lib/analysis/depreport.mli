(** Per-nest dependence summaries (the [layoutopt deps] report).

    Runs the exact dependence analysis ({!Mlo_ir.Dependence}) over every
    nest of a program and reports, per conflicting reference pair, the
    proven verdict: independence, the exact distance vectors, or the
    realized direction vectors — together with each nest's legal
    loop-order count and the Presburger engine's effort counters for the
    run (feasibility checks, eliminations, splinter case-splits and the
    deepest split nesting). *)

type pair_report = {
  src : int;  (** body index of the first access of the pair *)
  dst : int;  (** body index of the second access ([src <= dst]) *)
  src_ref : string;  (** pretty-printed reference, e.g. ["Q1[i+1][j]"] *)
  dst_ref : string;
  src_write : bool;
  dst_write : bool;
  deps : Mlo_ir.Dependence.dep list;  (** [[]] = proven independent *)
}

type nest_report = {
  nest : string;
  depth : int;
  pairs : pair_report list;  (** conflicting pairs, body order *)
  legal_orders : int;
  total_orders : int;
}

type t = {
  program : string;
  nests : nest_report list;
  checks : int;  (** Presburger feasibility/range probes this run *)
  eliminations : int;
  splits : int;
  max_split_depth : int;
}

val run : Mlo_ir.Program.t -> t
(** Analyzes every nest.  Emits one ["deps:analyze"] trace span
    (category ["analysis"]) and a ["presburger"] counter sample with the
    engine's effort when tracing is enabled. *)

val pinned : nest_report -> bool
(** Only the source loop order is legal (and alternatives exist). *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Mlo_obs.Json.t
(** One target object of the [memlayout-deps/1] schema: fields
    [program], [nests] (with [pairs], [legal_orders], [total_orders],
    [pinned] and per-dep [kind]/[vector]/[dirs]) and [presburger]
    (effort counters). *)
