module Program = Mlo_ir.Program
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Affine = Mlo_ir.Affine
module Array_info = Mlo_ir.Array_info
module Dependence = Mlo_ir.Dependence
module Nullspace = Mlo_linalg.Nullspace
module Intvec = Mlo_linalg.Intvec
module Trace = Mlo_obs.Trace
module Json = Mlo_obs.Json

type t = {
  program : string;
  arrays : int;
  nests : int;
  accesses : int;
  diagnostics : Diagnostic.t list;
}

let access_str nest a = Format.asprintf "%a" (Access.pp (Loop_nest.var_names nest)) a

(* Exact interval of an affine expression over the nest's iteration
   space: bounds are constants and the expression is affine, so the
   extremes are attained at per-loop endpoints chosen by coefficient
   sign ([lo] inclusive, [hi] exclusive). *)
let interval nest e =
  let loops = Loop_nest.loops nest in
  let lo = ref e.Affine.const and hi = ref e.Affine.const in
  Array.iteri
    (fun j (l : Loop_nest.loop) ->
      let c = Affine.coeff e j in
      if c > 0 then begin
        lo := !lo + (c * l.Loop_nest.lo);
        hi := !hi + (c * (l.Loop_nest.hi - 1))
      end
      else if c < 0 then begin
        lo := !lo + (c * (l.Loop_nest.hi - 1));
        hi := !hi + (c * l.Loop_nest.lo)
      end)
    loops;
  (!lo, !hi)

(* -- bounds: prove every access in-bounds or name the escape ---------- *)

let bounds_pass prog =
  let diags = ref [] in
  Array.iter
    (fun nest ->
      Array.iter
        (fun a ->
          let info = Program.find_array prog (Access.array_name a) in
          Array.iteri
            (fun r e ->
              let lo, hi = interval nest e in
              let extent = Array_info.extent info r in
              if lo < 0 || hi >= extent then
                diags :=
                  Diagnostic.make Diagnostic.Error ~code:"out-of-bounds"
                    ~subject:
                      (Printf.sprintf "%s/%s" (Loop_nest.name nest)
                         (Access.array_name a))
                    (Format.asprintf
                       "nest %s: %s dimension %d spans [%d, %d] outside [0, \
                        %d)"
                       (Loop_nest.name nest) (access_str nest a) r lo hi extent)
                  :: !diags)
            a.Access.indices)
        (Loop_nest.accesses nest))
    (Program.nests prog);
  !diags

(* -- liveness: dead, never-written, never-read arrays ----------------- *)

let liveness_pass prog =
  let arrays = Program.arrays prog in
  let n = Array.length arrays in
  let reads = Array.make n false and writes = Array.make n false in
  Array.iter
    (fun nest ->
      Array.iter
        (fun a ->
          let i = Program.array_index prog (Access.array_name a) in
          if Access.is_write a then writes.(i) <- true else reads.(i) <- true)
        (Loop_nest.accesses nest))
    (Program.nests prog);
  let diags = ref [] in
  Array.iteri
    (fun i info ->
      let name = Array_info.name info in
      match (reads.(i), writes.(i)) with
      | false, false ->
        diags :=
          Diagnostic.make Diagnostic.Warning ~code:"dead-array" ~subject:name
            (Printf.sprintf
               "array %s (%d bytes) is declared but referenced by no nest"
               name
               (Array_info.size_bytes info))
          :: !diags
      | true, false ->
        diags :=
          Diagnostic.make Diagnostic.Info ~code:"never-written" ~subject:name
            (Printf.sprintf
               "array %s is read but never written: values come from outside \
                the nests (input array)"
               name)
          :: !diags
      | false, true ->
        diags :=
          Diagnostic.make Diagnostic.Info ~code:"never-read" ~subject:name
            (Printf.sprintf
               "array %s is written but never read back (output array)" name)
          :: !diags
      | true, true -> ())
    arrays;
  !diags

(* -- injectivity: singular access matrices ---------------------------- *)

let injectivity_pass prog =
  let diags = ref [] in
  Array.iter
    (fun nest ->
      Array.iter
        (fun a ->
          match Nullspace.basis (Access.matrix a) with
          | [] -> ()
          | k :: _ ->
            diags :=
              Diagnostic.make Diagnostic.Info ~code:"singular-access"
                ~subject:
                  (Printf.sprintf "%s/%s" (Loop_nest.name nest)
                     (Access.array_name a))
                (Format.asprintf
                   "nest %s: access matrix of %s is singular; iterations \
                    along %a touch the same element (temporal reuse)"
                   (Loop_nest.name nest) (access_str nest a) Intvec.pp k)
              :: !diags)
        (Loop_nest.accesses nest))
    (Program.nests prog);
  !diags

(* -- pinning: nests whose dependences reject every alternative order -- *)

let pinning_pass prog =
  let diags = ref [] in
  Array.iter
    (fun nest ->
      if Loop_nest.depth nest >= 2 then
        let ds = Dependence.deps nest in
        if ds <> [] then begin
          let alternatives =
            match Loop_nest.permutations nest with
            | _identity :: rest -> List.map fst rest
            | [] -> []
          in
          let admits perm =
            List.for_all (fun (_, _, d) -> Dependence.dep_legal perm d) ds
          in
          if alternatives <> [] && not (List.exists admits alternatives) then begin
            (* Pinned: exactly the source order is legal.  Name the
               dependence that blocks some alternative. *)
            let blocking =
              List.find_opt
                (fun (_, _, d) ->
                  List.exists
                    (fun p -> not (Dependence.dep_legal p d))
                    alternatives)
                ds
            in
            match blocking with
            | None -> ()
            | Some (i, j, d) ->
              let accs = Loop_nest.accesses nest in
              let kind a = if Access.is_write a then "write" else "read" in
              diags :=
                Diagnostic.make Diagnostic.Info ~code:"pinned-order"
                  ~subject:(Loop_nest.name nest)
                  (Format.asprintf
                     "nest %s is pinned to its source loop order: the \
                      dependence between %s (%s) and %s (%s) with %s %a \
                      blocks every alternative"
                     (Loop_nest.name nest)
                     (access_str nest accs.(i))
                     (kind accs.(i))
                     (access_str nest accs.(j))
                     (kind accs.(j))
                     (match d with
                     | Dependence.Distance _ -> "distance"
                     | Dependence.Direction _ -> "direction")
                     Dependence.pp_dep d)
                :: !diags
          end
        end)
    (Program.nests prog);
  !diags

let run prog =
  let pass name f =
    Trace.with_span ~cat:"analysis" ("lint:" ^ name) (fun () -> f prog)
  in
  let diagnostics =
    Diagnostic.sort
      (pass "bounds" bounds_pass
      @ pass "liveness" liveness_pass
      @ pass "injectivity" injectivity_pass
      @ pass "pinning" pinning_pass)
  in
  let accesses =
    Array.fold_left
      (fun acc nest -> acc + Array.length (Loop_nest.accesses nest))
      0 (Program.nests prog)
  in
  {
    program = Program.name prog;
    arrays = Array.length (Program.arrays prog);
    nests = Array.length (Program.nests prog);
    accesses;
    diagnostics;
  }

let clean t = not (List.exists Diagnostic.is_error t.diagnostics)

let pp ppf t =
  Format.fprintf ppf "@[<v>lint %s: %d arrays, %d nests, %d accesses@," t.program
    t.arrays t.nests t.accesses;
  if t.diagnostics = [] then Format.fprintf ppf "  clean@,"
  else
    List.iter
      (fun d -> Format.fprintf ppf "  %a@," Diagnostic.pp d)
      t.diagnostics;
  Format.fprintf ppf "  %d error(s), %d warning(s), %d note(s)@]"
    (Diagnostic.count Diagnostic.Error t.diagnostics)
    (Diagnostic.count Diagnostic.Warning t.diagnostics)
    (Diagnostic.count Diagnostic.Info t.diagnostics)

let to_json t =
  Json.Obj
    [
      ("program", Json.Str t.program);
      ("arrays", Json.Num (float_of_int t.arrays));
      ("nests", Json.Num (float_of_int t.nests));
      ("accesses", Json.Num (float_of_int t.accesses));
      ("diagnostics", Json.Arr (List.map Diagnostic.to_json t.diagnostics));
    ]
