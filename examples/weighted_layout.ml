(* Weighted constraints (the paper's first future-work extension).

   When a network has several solutions, the paper's schemes return an
   arbitrary one (its Table 3 shows base and enhanced picking different
   solutions for three benchmarks).  Weighting each allowed pair by the
   cost of the nests that proposed it and maximizing by branch-and-bound
   picks the solution that serves the expensive nests.

   The demo program has two nests over the same arrays whose loop orders
   are pinned by a loop-carried dependence (distance (1 -1), so
   interchange is illegal): the cheap nest wants row-major, the 16x
   costlier nest wants column-major.  The unweighted network accepts
   either agreement; the weighted optimum must side with the costly
   nest.

   Run with: dune exec examples/weighted_layout.exe *)

module B = Mlo_ir.Builder
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Layout = Mlo_layout.Layout
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Weighted = Mlo_csp.Weighted
module Build = Mlo_netgen.Build
module Simulate = Mlo_cachesim.Simulate

(* read Y[i+1][j]; Y[i][j+1] = ... + X[i][j]: the (1 -1) dependence pins
   the loop order, so only the layouts can adapt. *)
let pinned_nest name ~bound ~transposed =
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" and j = B.var x "j" in
  let one = B.const x 1 in
  let flip a b = if transposed then [ b; a ] else [ a; b ] in
  B.nest name x [ bound; bound ]
    B.[
      read "X" (flip i j);
      read "Y" (flip (i +: one) j);
      write "Y" (flip i (j +: one));
    ]

let program ~n =
  Program.make ~name:"weighted-demo"
    [ Array_info.make "X" [ n + 1; n + 1 ]; Array_info.make "Y" [ n + 1; n + 1 ] ]
    [
      pinned_nest "cheap_rowwise" ~bound:(n / 4) ~transposed:false;
      pinned_nest "costly_colwise" ~bound:n ~transposed:true;
    ]

let pp_layouts build assignment =
  List.iter
    (fun (name, layout) ->
      Format.printf "  %-3s %s@." name (Layout.describe layout))
    (Build.assignment_layouts build assignment)

let () =
  let n = 96 in
  let prog = program ~n in
  let build, weighted = Build.weighted prog in
  let net = build.Build.network in

  print_endline "Unweighted enhanced-scheme solution (arbitrary among solutions):";
  (match Solver.solve ~config:(Schemes.enhanced ()) net with
  | { Solver.outcome = Solver.Solution a; _ } -> pp_layouts build a
  | _ -> print_endline "  no solution");

  print_endline "Weighted branch-and-bound optimum (favors the costly nest):";
  match (Weighted.solve weighted).Weighted.best with
  | Some (a, w) ->
    pp_layouts build a;
    Format.printf "  total weight: %.0f@." w;
    (* simulate every consistent solution to show the weights are real *)
    let sim sol =
      let layouts name = Build.lookup build sol name in
      let restructured = Mlo_netgen.Select.restructure prog layouts in
      Simulate.cycles (Simulate.run restructured ~layouts)
    in
    Format.printf "  optimum runs in %d cycles@." (sim a);
    let worst =
      List.fold_left
        (fun acc sol ->
          match acc with
          | None -> Some sol
          | Some best ->
            if Weighted.assignment_weight weighted sol
               < Weighted.assignment_weight weighted best
            then Some sol
            else acc)
        None
        (Mlo_csp.Brute.all_solutions net)
    in
    (match worst with
    | Some wsol ->
      Format.printf "  lightest consistent solution (%s) runs in %d cycles@."
        (String.concat ", "
           (List.map
              (fun (n, l) -> n ^ "=" ^ Layout.describe l)
              (Build.assignment_layouts build wsol)))
        (sim wsol)
    | None -> ())
  | None -> print_endline "  no solution"
