(* The Radar workload end to end: compare the heuristic baseline against
   the paper's base and enhanced constraint-network schemes, on both
   solution effort and quality of the optimized code.

   Run with: dune exec examples/radar_layout.exe *)

module Suite = Mlo_workloads.Suite
module Spec = Mlo_workloads.Spec
module Stats = Mlo_csp.Stats
module Optimizer = Mlo_core.Optimizer
module Simulate = Mlo_cachesim.Simulate

let () =
  let spec = Suite.by_name "radar" in
  let prog = spec.Spec.sim_program in
  Format.printf "%a@.@." Spec.pp spec;

  let original = Optimizer.simulate_original prog in
  Format.printf "%-10s %12d cycles (baseline)@." "original"
    (Simulate.cycles original);

  List.iter
    (fun (label, scheme) ->
      match
        Optimizer.optimize ~candidates:spec.Spec.candidates
          ~max_checks:200_000_000 scheme prog
      with
      | exception Optimizer.No_solution msg ->
        Format.printf "%-10s no solution (%s)@." label msg
      | sol ->
        let report = Optimizer.simulate sol in
        let effort =
          match (sol.Optimizer.solver_stats, sol.Optimizer.heuristic_evaluations) with
          | Some st, _ -> Printf.sprintf "%d checks" st.Stats.checks
          | None, Some n -> Printf.sprintf "%d combinations" n
          | None, None -> "?"
        in
        Format.printf "%-10s %12d cycles  %+6.2f%%  (solution: %s, %.4fs)@."
          label
          (Simulate.cycles report)
          (Simulate.improvement_percent ~baseline:original report)
          effort sol.Optimizer.elapsed_s)
    [
      ("heuristic", Optimizer.Heuristic);
      ("base", Optimizer.Base 1);
      ("enhanced", Optimizer.Enhanced 1);
    ]
