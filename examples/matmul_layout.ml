(* Matrix-multiplication chain: the motivating kernel for combined loop
   and data layout optimization.

   Builds D = A * B * C (via a temporary), extracts the constraint
   network, solves it with the enhanced scheme, and simulates the code on
   the paper's embedded cache hierarchy before and after optimization.

   Run with: dune exec examples/matmul_layout.exe *)

module Kernels = Mlo_workloads.Kernels
module Program = Mlo_ir.Program
module Layout = Mlo_layout.Layout
module Optimizer = Mlo_core.Optimizer
module Simulate = Mlo_cachesim.Simulate

let build_chain ~n =
  let init_t, req0 = Kernels.fill ~name:"init_t" ~n ~dst:"T" in
  let mm1, req1 = Kernels.matmul ~name:"mm1" ~n ~c:"T" ~a:"A" ~b:"B" in
  let init_d, req2 = Kernels.fill ~name:"init_d" ~n ~dst:"D" in
  let mm2, req3 = Kernels.matmul ~name:"mm2" ~n ~c:"D" ~a:"T" ~b:"C" in
  let arrays = Kernels.declare (req0 @ req1 @ req2 @ req3) in
  Program.make ~name:"matmul-chain" arrays [ init_t; mm1; init_d; mm2 ]

let () =
  let n = 64 in
  let prog = build_chain ~n in
  Format.printf "Program (n = %d):@.%a@.@." n Program.pp prog;

  let original = Optimizer.simulate_original prog in
  Format.printf "original  : %a@." Simulate.pp_report original;

  let sol = Optimizer.optimize (Optimizer.Enhanced 1) prog in
  Format.printf "@.Chosen layouts:@.";
  List.iter
    (fun (name, layout) ->
      Format.printf "  %-3s %-14s %a@." name (Layout.describe layout) Layout.pp
        layout)
    sol.Optimizer.layouts;

  let optimized = Optimizer.simulate sol in
  Format.printf "@.optimized : %a@." Simulate.pp_report optimized;
  Format.printf "improvement: %.2f%% (speedup %.2fx)@."
    (Simulate.improvement_percent ~baseline:original optimized)
    (Simulate.speedup ~baseline:original optimized)
