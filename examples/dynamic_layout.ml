(* Dynamic layouts (the paper's second future-work extension).

   A two-phase program touches the same arrays row-wise in phase 1 and
   column-wise in phase 2, with a loop-carried dependence pinning each
   phase's loop order (so loop interchange cannot reconcile them - only
   the data layout can).  A single static layout must sacrifice one
   phase; a dynamic plan re-lays the arrays out between phases, paying
   real copy traffic through the simulated cache hierarchy.

   Run with: dune exec examples/dynamic_layout.exe *)

module B = Mlo_ir.Builder
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Layout = Mlo_layout.Layout
module Optimizer = Mlo_core.Optimizer
module Dynamic = Mlo_core.Dynamic
module Simulate = Mlo_cachesim.Simulate
module Hierarchy = Mlo_cachesim.Hierarchy

(* read V[i+1][j]; V[i][j+1] = ...: distance (1 -1), so interchanging the
   loops would reverse the dependence - each phase's order is pinned. *)
let phase name ~n ~transposed ~repeats r0 =
  List.init repeats (fun r ->
      let x = B.ctx [ "i"; "j" ] in
      let i = B.var x "i" and j = B.var x "j" in
      let one = B.const x 1 in
      let flip a b = if transposed then [ b; a ] else [ a; b ] in
      B.nest (Printf.sprintf "%s%d" name (r0 + r)) x [ n; n ]
        B.[
          read "U" (flip i j);
          read "V" (flip (i +: one) j);
          write "V" (flip i (j +: one));
        ])

let program ~n ~repeats =
  Program.make ~name:"two-phase"
    [ Array_info.make "U" [ n; n ]; Array_info.make "V" [ n + 1; n + 1 ] ]
    (phase "rowwise" ~n ~transposed:false ~repeats 0
    @ phase "colwise" ~n ~transposed:true ~repeats repeats)

let () =
  let n = 128 and repeats = 4 in
  let prog = program ~n ~repeats in

  (* static: one program-wide assignment from the enhanced scheme *)
  let static = Optimizer.optimize (Optimizer.Enhanced 1) prog in
  let static_report = Optimizer.simulate static in
  Format.printf "static plan:@.";
  List.iter
    (fun (a, l) -> Format.printf "  %-3s %s@." a (Layout.describe l))
    static.Optimizer.layouts;
  Format.printf "  %d cycles@.@." (Simulate.cycles static_report);

  (* dynamic: let the DP place the boundaries, then assign per segment
     and remap between *)
  let segments = Dynamic.optimal_segments ~seed:1 prog in
  Format.printf "DP-chosen segments:";
  List.iter
    (fun s ->
      Format.printf " [%d..%d]" s.Dynamic.first_nest s.Dynamic.last_nest)
    segments;
  Format.printf "@.";
  let plan = Dynamic.plan ~seed:1 prog ~segments in
  Format.printf "dynamic plan (%d segments, %d remaps):@."
    (List.length plan.Dynamic.segments)
    (List.length plan.Dynamic.changes);
  List.iteri
    (fun s layouts ->
      Format.printf "  segment %d:" s;
      List.iter
        (fun (a, l) -> Format.printf " %s=%s" a (Layout.describe l))
        layouts;
      Format.printf "@.")
    plan.Dynamic.per_segment;
  let report = Dynamic.simulate_plan prog plan in
  Format.printf "  %d cycles (%d copy accesses for %d remaps)@."
    report.Dynamic.compute.Hierarchy.cycles report.Dynamic.copy_accesses
    report.Dynamic.remaps;

  let sc = Simulate.cycles static_report in
  let dc = report.Dynamic.compute.Hierarchy.cycles in
  Format.printf "@.dynamic vs static: %.2f%% %s@."
    (100. *. Float.abs (float_of_int (sc - dc)) /. float_of_int sc)
    (if dc < sc then "faster" else "slower")
