(* Quickstart: the paper's two worked examples, end to end.

   1. Figure 2's loop nest - derive the best memory layouts for Q1 and Q2
      directly from the access pattern.
   2. Section 3's four-array constraint network - build it by hand and
      solve it with both of the paper's schemes.

   Run with: dune exec examples/quickstart.exe *)

module B = Mlo_ir.Builder
module Program = Mlo_ir.Program
module Layout = Mlo_layout.Layout
module Locality = Mlo_layout.Locality
module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Build = Mlo_netgen.Build

(* ------------------------------------------------------------------ *)
(* Part 1: Figure 2                                                     *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  print_endline "=== Paper Figure 2: for i1, i2: ... Q1[i1+i2][i2] ... Q2[i1+i2][i1] ...";
  let n = 64 in
  let x = B.ctx [ "i1"; "i2" ] in
  let i1 = B.var x "i1" and i2 = B.var x "i2" in
  let nest =
    B.nest "fig2" x [ n; n ]
      B.[ read "Q1" [ i1 +: i2; i2 ]; read "Q2" [ i1 +: i2; i1 ] ]
  in
  let q1 = Mlo_ir.Array_info.make "Q1" [ (2 * n) - 1; n ] in
  let q2 = Mlo_ir.Array_info.make "Q2" [ (2 * n) - 1; n ] in
  let prog = Program.make ~name:"fig2" [ q1; q2 ] [ nest ] in
  (* derive each reference's preferred layout directly *)
  Array.iter
    (fun acc ->
      match Locality.preferred_layout acc with
      | Some layout ->
        Format.printf "  %s prefers %s %a@."
          (Mlo_ir.Access.array_name acc)
          (Layout.describe layout) Layout.pp layout
      | None ->
        Format.printf "  %s has temporal reuse: any layout works@."
          (Mlo_ir.Access.array_name acc))
    (Mlo_ir.Loop_nest.accesses nest);
  (* and through the whole pipeline *)
  let build = Build.build prog in
  match Solver.solve_values build.Build.network with
  | Some (layouts, _) ->
    Array.iteri
      (fun i l ->
        Format.printf "  network solution: %s -> %s@."
          (Network.name build.Build.network i)
          (Layout.describe l))
      layouts
  | None -> print_endline "  unexpected: no solution"

(* ------------------------------------------------------------------ *)
(* Part 2: the Section 3 network                                        *)
(* ------------------------------------------------------------------ *)

let section3 () =
  print_endline "=== Paper Section 3: the four-array constraint network";
  let h coeffs = Layout.of_hyperplane (Mlo_layout.Hyperplane.of_list coeffs) in
  let net =
    Network.create
      ~names:[| "Q1"; "Q2"; "Q3"; "Q4" |]
      ~domains:
        [|
          [| h [ 1; 0 ]; h [ 0; 1 ]; h [ 1; 1 ] |];
          [| h [ 1; -1 ]; h [ 1; 1 ] |];
          [| h [ 0; 1 ]; h [ 1; 1 ]; h [ 1; 2 ] |];
          [| h [ 1; 0 ]; h [ 0; 1 ]; h [ 1; 1 ] |];
        |]
  in
  Network.add_allowed net 0 1 [ (0, 1); (1, 0) ];
  Network.add_allowed net 0 2 [ (0, 0); (1, 1); (2, 2) ];
  Network.add_allowed net 0 3 [ (0, 0); (1, 1) ];
  Network.add_allowed net 1 2 [ (1, 0); (0, 1) ];
  Network.add_allowed net 1 3 [ (1, 0) ];
  Network.add_allowed net 2 3 [ (0, 0) ];
  List.iter
    (fun (label, config) ->
      match Solver.solve ~config net with
      | { Solver.outcome = Solver.Solution a; stats } ->
        Format.printf "  %-8s finds:" label;
        Array.iteri
          (fun i v ->
            Format.printf " %s=%s" (Network.name net i)
              (Layout.describe (Network.value net i v)))
          a;
        Format.printf "  (%a)@." Mlo_csp.Stats.pp stats
      | { Solver.outcome = Solver.Unsatisfiable | Solver.Aborted; _ } ->
        Format.printf "  %-8s: no solution?!@." label)
    [ ("base", Schemes.base ~seed:42 ()); ("enhanced", Schemes.enhanced ()) ]

let () =
  figure2 ();
  print_newline ();
  section3 ()
