(* Rank-3 layouts: the paper's Section 2 generalization to higher
   dimensions ("we use an ordered set of hyperplane vectors").

   An axis rotation dst[i][j][k] = src[k][i][j] wants dst's last axis
   fastest but src's FIRST axis fastest; no loop order serves both, and
   only a 3-D layout for src (hyperplanes (0 1 0), (0 0 1) - i.e. its
   first axis innermost in memory) reconciles them.

   Run with: dune exec examples/tensor_layout.exe *)

module Kernels = Mlo_workloads.Kernels
module Program = Mlo_ir.Program
module Layout = Mlo_layout.Layout
module Hyperplane = Mlo_layout.Hyperplane
module Locality = Mlo_layout.Locality
module Optimizer = Mlo_core.Optimizer
module Simulate = Mlo_cachesim.Simulate

let () =
  let n = 48 in
  let rot, req = Kernels.rotate3 ~name:"rotate" ~n ~dst:"DST" ~src:"SRC" in
  let prog = Program.make ~name:"tensor-rotate" (Kernels.declare req) [ rot ] in

  (* derive each reference's preferred 3-D layout directly *)
  Array.iter
    (fun acc ->
      match Locality.preferred_layout acc with
      | Some layout ->
        Format.printf "%s prefers %a@."
          (Mlo_ir.Access.array_name acc)
          Layout.pp layout
      | None ->
        Format.printf "%s is innermost-invariant@."
          (Mlo_ir.Access.array_name acc))
    (Mlo_ir.Loop_nest.accesses rot);

  let original = Optimizer.simulate_original prog in
  Format.printf "@.original  (both row-major): %a@." Simulate.pp_report original;

  let sol = Optimizer.optimize (Optimizer.Enhanced 1) prog in
  Format.printf "@.chosen layouts:@.";
  List.iter
    (fun (name, layout) ->
      Format.printf "  %-4s %a@." name Layout.pp layout)
    sol.Optimizer.layouts;
  let optimized = Optimizer.simulate sol in
  Format.printf "optimized: %a@." Simulate.pp_report optimized;
  Format.printf "improvement: %.2f%%@."
    (Simulate.improvement_percent ~baseline:original optimized);

  (* a batched matmul shows depth-4 nests with rank-3 operands *)
  let bm, breq =
    Kernels.batched_matmul ~name:"bmm" ~batches:8 ~n:32 ~c:"C" ~a:"A" ~b:"B"
  in
  let bprog = Program.make ~name:"batched-mm" (Kernels.declare breq) [ bm ] in
  let borig = Optimizer.simulate_original bprog in
  let bsol = Optimizer.optimize (Optimizer.Enhanced 1) bprog in
  Format.printf "@.batched matmul layouts:@.";
  List.iter
    (fun (name, layout) ->
      Format.printf "  %-4s %a@." name Layout.pp layout)
    bsol.Optimizer.layouts;
  Format.printf "batched matmul improvement: %.2f%%@."
    (Simulate.improvement_percent ~baseline:borig (Optimizer.simulate bsol))
