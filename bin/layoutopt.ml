(* layoutopt: command-line driver for the memory-layout optimizer.

   Subcommands mirror the repository's experiments: show a workload,
   solve its constraint network with a chosen scheme, simulate the
   optimized code, and regenerate each of the paper's tables/figures. *)

module Spec = Mlo_workloads.Spec
module Suite = Mlo_workloads.Suite
module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Stats = Mlo_csp.Stats
module Build = Mlo_netgen.Build
module Layout = Mlo_layout.Layout
module Optimizer = Mlo_core.Optimizer
module Simulate = Mlo_cachesim.Simulate
module Tables = Mlo_experiments.Tables
module Parser = Mlo_lang.Parser
module Trace = Mlo_obs.Trace
module Trace_summary = Mlo_obs.Trace_summary
module Json = Mlo_obs.Json
module Lint = Mlo_analysis.Lint
module Netcheck = Mlo_analysis.Netcheck
module Diagnostic = Mlo_analysis.Diagnostic
module Locality = Mlo_analysis.Locality
module Depreport = Mlo_analysis.Depreport
module Costcheck = Mlo_analysis.Costcheck
module Prune = Mlo_netgen.Prune
module Proof = Mlo_verify.Proof
module Checker = Mlo_verify.Checker

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common arguments                                                     *)
(* ------------------------------------------------------------------ *)

let workload_names = [ "med-im04"; "mxm"; "radar"; "shape"; "track" ]

(* Workloads are named, not enumerated: besides the five Table-1 specs,
   "scale-N" and "hard-N" (any positive N) instantiate the synthetic
   families.  An unknown name dies with a single-line error naming the
   alternatives. *)
let spec_of_workload name =
  match Suite.by_name name with
  | spec -> spec
  | exception Not_found ->
    Printf.eprintf
      "layoutopt: unknown workload '%s' (valid workloads: %s, scale-N, \
       hard-N)\n"
      name
      (String.concat ", " workload_names);
    exit 2

let workload_arg =
  let doc =
    Printf.sprintf "Benchmark to operate on; one of %s, scale-N (the \
                    synthetic scale family at N arrays, e.g. scale-100), \
                    or hard-N (the phase-transition family, e.g. hard-20)."
      (String.concat ", " workload_names)
  in
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let scheme_names =
  [ "heuristic"; "base"; "enhanced"; "enhanced-ac"; "cdl"; "portfolio"; "bnb" ]

let scheme_arg =
  let doc =
    Printf.sprintf "Optimization scheme; one of %s."
      (String.concat ", " scheme_names)
  in
  Arg.(value & opt string "enhanced" & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let seed_arg =
  let doc = "Seed for the schemes' random decisions." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let max_checks_arg =
  let doc = "Abort the search after this many consistency checks." in
  Arg.(value & opt int 2_000_000_000 & info [ "max-checks" ] ~docv:"N" ~doc)

let explain_flag =
  let doc = "Print the per-nest, per-reference locality report." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let domains_arg =
  let doc =
    "Number of OCaml domains for parallel work: independent network \
     components in 'solve' (for -s portfolio it instead sizes the racing \
     pool), the simulation sweep in 'table3' (default there: up to 8, \
     bounded by the machine); 1 forces serial execution."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

(* [--domains 0] (or a negative count) must die with a single-line
   error before it reaches the pool, like every other CLI validation. *)
let validated_domains = function
  | Some d when d <= 0 ->
    Printf.eprintf
      "layoutopt: --domains must be a positive integer (got %d)\n" d;
    exit 2
  | d -> d

let restarts_arg =
  let doc =
    "For -s cdl/portfolio: number of Luby-bounded restart runs before \
     the final unbounded run (0 disables restarting)."
  in
  Arg.(
    value
    & opt int Mlo_csp.Cdl.default_config.Mlo_csp.Cdl.restarts
    & info [ "restarts" ] ~docv:"N" ~doc)

let learn_limit_arg =
  let doc =
    "For -s cdl/portfolio: keep at most this many learned nogoods \
     (largest, least-active nogoods are forgotten first)."
  in
  Arg.(
    value
    & opt int Mlo_csp.Cdl.default_config.Mlo_csp.Cdl.learn_limit
    & info [ "learn-limit" ] ~docv:"N" ~doc)

let bound_slack_arg =
  let doc =
    "For -s bnb: prune a subtree when its lower bound times (1 + $(docv)) \
     reaches the incumbent.  0 (the default) searches to the exact \
     optimum; a positive value trades optimality for speed with a \
     (1 + $(docv))-approximation guarantee."
  in
  Arg.(value & opt float 0.0 & info [ "bound-slack" ] ~docv:"S" ~doc)

(* A negative slack would make the bound inadmissible — reject it at the
   CLI boundary with the usual one-line error. *)
let validated_bound_slack s =
  if Float.is_nan s || s < 0.0 then begin
    Printf.eprintf
      "layoutopt: --bound-slack must be non-negative (got %g)\n" s;
    exit 2
  end;
  s

let objective_names = [ "misses"; "lines" ]

let objective_arg =
  let doc =
    Printf.sprintf
      "For -s bnb: cost the search minimizes; one of %s (estimated L1 \
       misses, or distinct L1 lines — the cold-miss floor)."
      (String.concat ", " objective_names)
  in
  Arg.(value & opt string "misses" & info [ "objective" ] ~docv:"OBJ" ~doc)

let objective_of name =
  match String.lowercase_ascii name with
  | "misses" -> Optimizer.Estimated_misses
  | "lines" -> Optimizer.Distinct_lines
  | other ->
    Printf.eprintf
      "layoutopt: unknown objective '%s' (valid objectives: %s)\n" other
      (String.concat ", " objective_names);
    exit 2

(* An unknown scheme must die with a single-line error naming the
   alternatives — not an exception trace or a usage dump. *)
let scheme_of ~seed ~restarts ~learn_limit ?(bound_slack = 0.0) name =
  let cdl_config =
    { Mlo_csp.Cdl.default_config with Mlo_csp.Cdl.restarts; learn_limit }
  in
  match String.lowercase_ascii name with
  | "heuristic" -> Optimizer.Heuristic
  | "base" -> Optimizer.Base seed
  | "enhanced" -> Optimizer.Enhanced seed
  | "enhanced-ac" -> Optimizer.Enhanced_ac seed
  | "cdl" -> Optimizer.Cdl cdl_config
  | "portfolio" ->
    Optimizer.Portfolio
      { Mlo_csp.Portfolio.default_config with
        Mlo_csp.Portfolio.seed;
        cdl = cdl_config }
  | "bnb" ->
    Optimizer.Bnb
      { Mlo_csp.Bnb.default_config with
        Mlo_csp.Bnb.bound_slack;
        learn_limit }
  | other ->
    Printf.eprintf "layoutopt: unknown scheme '%s' (valid schemes: %s)\n"
      other
      (String.concat ", " scheme_names);
    exit 2

let trace_arg =
  let doc =
    "Record this run as Chrome trace_event JSON into $(docv) (load in \
     chrome://tracing or ui.perfetto.dev; roll up with 'layoutopt \
     trace-summary $(docv)')."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let with_trace file f =
  match file with
  | None -> f ()
  | Some path ->
    Trace.start ();
    let r = f () in
    Trace.write path;
    Trace.stop ();
    Format.eprintf "trace written to %s@." path;
    r

(* ------------------------------------------------------------------ *)
(* show                                                                 *)
(* ------------------------------------------------------------------ *)

let show_cmd =
  let run workload =
    let spec = spec_of_workload workload in
    Format.printf "%a@.@.%a@." Spec.pp spec Mlo_ir.Program.pp
      spec.Spec.program;
    let build = Spec.extract spec in
    Format.printf "@.%a@."
      (Network.pp (fun ppf l -> Format.fprintf ppf "%s" (Layout.describe l)))
      build.Build.network
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a workload's program and constraint network")
    Term.(const run $ workload_arg)

(* ------------------------------------------------------------------ *)
(* solve                                                                *)
(* ------------------------------------------------------------------ *)

let prune_flag =
  let doc =
    "Drop dominated layout candidates from every array's domain before \
     the solver runs (sound: satisfiability is unchanged); reports the \
     pruned-value counts."
  in
  Arg.(value & flag & info [ "prune-dominated" ] ~doc)

let pp_pruned ppf = function
  | Some info when Prune.total info > 0 ->
    Format.fprintf ppf "pruned: %d dominated values (domain %d -> %d%s)@."
      (Prune.total info) info.Prune.before info.Prune.after
      (String.concat ""
         (List.map
            (fun (a, n) -> Printf.sprintf "; %s -%d" a n)
            info.Prune.per_array))
  | Some info ->
    Format.fprintf ppf "pruned: no dominated values (domain %d)@."
      info.Prune.before
  | None -> ()

let proof_arg =
  let doc =
    "Write a memlayout-proof/1 certificate of the solver run to $(docv) \
     (NDJSON), checkable with 'layoutopt verify $(docv)'.  Not available \
     for -s heuristic, which runs no solver to certify."
  in
  Arg.(value & opt (some string) None & info [ "proof" ] ~docv:"FILE" ~doc)

let solve_cmd =
  let run workload scheme seed max_checks restarts learn_limit bound_slack
      objective explain prune domains proof_file trace =
    let spec = spec_of_workload workload in
    let bound_slack = validated_bound_slack bound_slack in
    let objective = objective_of objective in
    let scheme = scheme_of ~seed ~restarts ~learn_limit ~bound_slack scheme in
    let domains = validated_domains domains in
    (match (proof_file, scheme) with
    | Some _, Optimizer.Heuristic ->
      Printf.eprintf
        "layoutopt: --proof is not available for -s heuristic (no solver \
         run to certify)\n";
      exit 2
    | _ -> ());
    (* The certificate names the workload as the CLI knows it, so
       'verify' can rebuild the same network through the suite. *)
    let proof_sink path p =
      let open Proof in
      write path { p with header = { p.header with workload } };
      Format.eprintf "proof written to %s@." path
    in
    let proof = Option.map proof_sink proof_file in
    match
      with_trace trace @@ fun () ->
      Optimizer.optimize ~candidates:spec.Spec.candidates ~max_checks
        ~prune_dominated:prune ?domains ~objective ?proof scheme
        spec.Spec.program
    with
    | exception Optimizer.No_solution msg ->
      Format.printf "no solution: %s@." msg;
      exit 1
    | sol ->
      Format.printf "Layouts for %s:@." spec.Spec.name;
      List.iter
        (fun (name, layout) ->
          Format.printf "  %-6s %s@." name (Layout.describe layout))
        sol.Optimizer.layouts;
      Format.printf "%a" pp_pruned sol.Optimizer.pruned_values;
      (match sol.Optimizer.solver_stats with
      | Some st -> Format.printf "solver: %a@." Stats.pp st
      | None -> ());
      (match sol.Optimizer.portfolio_winner with
      | Some w -> Format.printf "portfolio winner: %s@." w
      | None -> ());
      (match sol.Optimizer.heuristic_evaluations with
      | Some n -> Format.printf "heuristic: %d combinations scored@." n
      | None -> ());
      (match sol.Optimizer.objective_value with
      | Some c ->
        Format.printf "objective: %s = %.17g@."
          (Optimizer.objective_label objective)
          c
      | None -> ());
      Format.printf "elapsed: %.4fs@." sol.Optimizer.elapsed_s;
      if explain then
        Format.printf "@.%a@." Mlo_core.Explain.pp
          (Mlo_core.Explain.explain spec.Spec.program sol)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Choose memory layouts for a workload")
    Term.(
      const run $ workload_arg $ scheme_arg $ seed_arg $ max_checks_arg
      $ restarts_arg $ learn_limit_arg $ bound_slack_arg $ objective_arg
      $ explain_flag $ prune_flag $ domains_arg $ proof_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                             *)
(* ------------------------------------------------------------------ *)

let reference_flag =
  let doc =
    "Use the interpretive reference engine instead of the compiled \
     address-stream engine (slower; counters are identical)."
  in
  Arg.(value & flag & info [ "reference" ] ~doc)

let simulate_cmd =
  let run workload scheme seed max_checks restarts learn_limit reference trace =
    let spec = spec_of_workload workload in
    let scheme = scheme_of ~seed ~restarts ~learn_limit scheme in
    let prog = spec.Spec.sim_program in
    let engine = if reference then Simulate.run_reference else Simulate.run in
    with_trace trace @@ fun () ->
    let original = engine prog ~layouts:(fun _ -> None) in
    Format.printf "original : %a@." Simulate.pp_report original;
    match
      Optimizer.optimize ~candidates:spec.Spec.candidates ~max_checks scheme
        prog
    with
    | exception Optimizer.No_solution msg ->
      Format.printf "no solution: %s@." msg;
      exit 1
    | sol ->
      let report =
        engine sol.Optimizer.restructured ~layouts:(Optimizer.lookup sol)
      in
      Format.printf "optimized: %a@." Simulate.pp_report report;
      Format.printf "improvement: %.2f%%@."
        (Simulate.improvement_percent ~baseline:original report)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate a workload before and after layout optimization")
    Term.(
      const run $ workload_arg $ scheme_arg $ seed_arg $ max_checks_arg
      $ restarts_arg $ learn_limit_arg $ reference_flag $ trace_arg)

(* ------------------------------------------------------------------ *)
(* optimize-file                                                        *)
(* ------------------------------------------------------------------ *)

let file_arg =
  let doc = "Program in the textual loop-nest language (see lib/lang)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let simulate_flag =
  let doc = "Also simulate the program before and after optimization." in
  Arg.(value & flag & info [ "simulate" ] ~doc)

let optimize_file_cmd =
  let run file scheme seed max_checks restarts learn_limit simulate explain =
    match Parser.parse_file file with
    | exception Parser.Error (msg, line, col) ->
      Format.eprintf "%s:%d:%d: %s@." file line col msg;
      exit 2
    | prog -> (
      Format.printf "parsed %s: %d arrays, %d nests@." file
        (Array.length (Mlo_ir.Program.arrays prog))
        (Array.length (Mlo_ir.Program.nests prog));
      match
        Optimizer.optimize ~max_checks
          (scheme_of ~seed ~restarts ~learn_limit scheme)
          prog
      with
      | exception Optimizer.No_solution msg ->
        Format.printf "no solution: %s@." msg;
        exit 1
      | sol ->
        Format.printf "Layouts:@.";
        List.iter
          (fun (name, layout) ->
            Format.printf "  %-8s %s@." name (Layout.describe layout))
          sol.Optimizer.layouts;
        if explain then
          Format.printf "@.%a@." Mlo_core.Explain.pp
            (Mlo_core.Explain.explain prog sol);
        if simulate then begin
          let original = Optimizer.simulate_original prog in
          let optimized = Optimizer.simulate sol in
          Format.printf "original : %a@." Simulate.pp_report original;
          Format.printf "optimized: %a@." Simulate.pp_report optimized;
          Format.printf "improvement: %.2f%%@."
            (Simulate.improvement_percent ~baseline:original optimized)
        end)
  in
  Cmd.v
    (Cmd.info "optimize-file"
       ~doc:"Parse a program file and choose its memory layouts")
    Term.(
      const run $ file_arg $ scheme_arg $ seed_arg $ max_checks_arg
      $ restarts_arg $ learn_limit_arg $ simulate_flag $ explain_flag)

(* ------------------------------------------------------------------ *)
(* tables and figure                                                    *)
(* ------------------------------------------------------------------ *)

let table1_cmd =
  let run () = Format.printf "%a@." Tables.print_table1 (Tables.run_table1 ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1 (benchmark codes)")
    Term.(const run $ const ())

let table2_cmd =
  let run seed max_checks prune trace =
    Format.printf "%a@." Tables.print_table2
      (with_trace trace @@ fun () ->
       Tables.run_table2 ~seed ~max_checks ~prune_dominated:prune ())
  in
  Cmd.v (Cmd.info "table2" ~doc:"Regenerate Table 2 (solution times)")
    Term.(const run $ seed_arg $ max_checks_arg $ prune_flag $ trace_arg)

let fig4_cmd =
  let run seed max_checks =
    Format.printf "%a@." Tables.print_fig4 (Tables.run_fig4 ~seed ~max_checks ())
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Regenerate Figure 4 (enhancement breakdown)")
    Term.(const run $ seed_arg $ max_checks_arg)

let table3_cmd =
  let run seed max_checks domains trace =
    let domains = validated_domains domains in
    Format.printf "%a@." Tables.print_table3
      (with_trace trace @@ fun () ->
       Tables.run_table3 ~seed ~max_checks ?domains ())
  in
  Cmd.v (Cmd.info "table3" ~doc:"Regenerate Table 3 (execution times)")
    Term.(const run $ seed_arg $ max_checks_arg $ domains_arg $ trace_arg)

let ablation_cmd =
  let run seed max_checks =
    Format.printf "%a@." Tables.print_ablation
      (Tables.run_ablation ~seed ~max_checks ())
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Compare solver design choices (backjumping flavours, forward              checking, AC-3 preprocessing)")
    Term.(const run $ seed_arg $ max_checks_arg)

(* ------------------------------------------------------------------ *)
(* lint / analyze                                                       *)
(* ------------------------------------------------------------------ *)

(* Shared target selection: any number of program files, the built-in
   suite, or one named workload.  Each target carries a thunk building
   its constraint network (with the workload's candidate palette when it
   comes from the suite) so [lint] never pays for extraction. *)

let files_pos_arg =
  let doc = "Programs in the textual loop-nest language; may repeat." in
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)

let suite_flag =
  let doc = "Also analyze the five built-in benchmark workloads." in
  Arg.(value & flag & info [ "suite" ] ~doc)

let workload_opt_arg =
  let doc =
    Printf.sprintf
      "Built-in benchmark to analyze; one of %s, scale-N, or hard-N."
      (String.concat ", " workload_names)
  in
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let json_flag =
  let doc =
    "Emit one memlayout-analysis/1 JSON document on stdout instead of text."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let gather_targets cmd files suite workload =
  let suite_names =
    if suite then workload_names
    else match workload with Some w -> [ w ] | None -> []
  in
  let of_suite name =
    let spec = spec_of_workload name in
    (name, spec.Spec.program, fun () -> Spec.extract spec)
  in
  let of_file file =
    match Parser.parse_file file with
    | exception Parser.Error (msg, line, col) ->
      Format.eprintf "%s:%d:%d: %s@." file line col msg;
      exit 2
    | prog -> (file, prog, fun () -> Build.build prog)
  in
  let targets = List.map of_file files @ List.map of_suite suite_names in
  if targets = [] then begin
    Printf.eprintf
      "layoutopt: %s needs something to analyze (FILE arguments, --suite, or \
       -w NAME)\n"
      cmd;
    exit 2
  end;
  targets

let analysis_doc targets =
  Json.Obj
    [
      ("schema", Json.Str "memlayout-analysis/1");
      ("targets", Json.Arr targets);
    ]

let lint_cmd =
  let run files suite workload json trace =
    let targets = gather_targets "lint" files suite workload in
    let code =
      with_trace trace @@ fun () ->
      let reports =
        List.map (fun (_, prog, _) -> Lint.run prog) targets
      in
      if json then
        print_endline
          (Json.to_string (analysis_doc (List.map Lint.to_json reports)))
      else
        List.iteri
          (fun i r ->
            if i > 0 then Format.printf "@.";
            Format.printf "%a@." Lint.pp r)
          reports;
      Diagnostic.exit_code
        (List.concat_map (fun r -> r.Lint.diagnostics) reports)
    in
    exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Check programs before optimization: bounds of every affine \
          access, dead and write-only arrays, singular access matrices, \
          dependence-pinned loop orders.  Exits 1 when any \
          error-severity diagnostic is found, 2 on usage errors.")
    Term.(
      const run $ files_pos_arg $ suite_flag $ workload_opt_arg $ json_flag
      $ trace_arg)

let analyze_cmd =
  let run files suite workload json trace =
    let targets = gather_targets "analyze" files suite workload in
    let code =
      with_trace trace @@ fun () ->
      let results =
        List.map
          (fun (_, prog, extract) ->
            let lint = Lint.run prog in
            let build = extract () in
            let name = Network.name build.Build.network in
            let report = Netcheck.analyze build.Build.network in
            (lint, name, report))
          targets
      in
      if json then
        print_endline
          (Json.to_string
             (analysis_doc
                (List.map
                   (fun (lint, name, report) ->
                     match Lint.to_json lint with
                     | Json.Obj fields ->
                       Json.Obj
                         (fields @ [ ("network", Netcheck.to_json ~name report) ])
                     | other -> other)
                   results)))
      else
        List.iteri
          (fun i (lint, name, report) ->
            if i > 0 then Format.printf "@.";
            Format.printf "%a@.%a@." Lint.pp lint (Netcheck.pp ~name) report)
          results;
      Diagnostic.exit_code
        (List.concat_map
           (fun (lint, name, report) ->
             lint.Lint.diagnostics @ Netcheck.diagnostics ~name report)
           results)
    in
    exit code
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the program lint plus structural analysis of the extracted \
          constraint network: connected components, width and induced \
          width along the most-constraining order (Freuder's \
          backtrack-free condition), arc-inconsistent values, redundant \
          constraints, and a minimal unsat core when arc consistency \
          wipes a domain.  Exits 1 when any error-severity diagnostic is \
          found, 2 on usage errors.")
    Term.(
      const run $ files_pos_arg $ suite_flag $ workload_opt_arg $ json_flag
      $ trace_arg)

let deps_json_flag =
  let doc =
    "Emit one memlayout-deps/1 JSON document on stdout instead of text."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let deps_cmd =
  let run files suite workload json trace =
    let targets = gather_targets "deps" files suite workload in
    with_trace trace @@ fun () ->
    let reports =
      List.map (fun (_, prog, _) -> Depreport.run prog) targets
    in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("schema", Json.Str "memlayout-deps/1");
                ("targets", Json.Arr (List.map Depreport.to_json reports));
              ]))
    else
      List.iteri
        (fun i r ->
          if i > 0 then Format.printf "@.";
          Format.printf "%a@." Depreport.pp r)
        reports
  in
  Cmd.v
    (Cmd.info "deps"
       ~doc:
         "Exact dependence analysis per nest: for every conflicting \
          reference pair, the proven verdict (independence, exact \
          distance vectors, or direction vectors), the legal loop-order \
          count, and the Presburger engine's effort counters.  Exits 2 \
          on usage errors.")
    Term.(
      const run $ files_pos_arg $ suite_flag $ workload_opt_arg
      $ deps_json_flag $ trace_arg)

(* ------------------------------------------------------------------ *)
(* locality                                                             *)
(* ------------------------------------------------------------------ *)

let locality_json_flag =
  let doc =
    "Emit one memlayout-locality/1 JSON document on stdout instead of text."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let check_flag =
  let doc =
    "Cross-check the static estimate against the cache simulator \
     (suite workloads are checked at their small simulation sizes); a \
     divergence beyond the threshold is an error-severity diagnostic."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let threshold_arg =
  let doc = "Relative-error threshold for --check." in
  Arg.(
    value
    & opt float Costcheck.default_threshold
    & info [ "threshold" ] ~docv:"FRACTION" ~doc)

let locality_cmd =
  let run files suite workload json check threshold trace =
    (* (name, displayed program, program --check simulates) — suite
       workloads are displayed at paper sizes but checked at their small
       simulation sizes, where ground truth is affordable. *)
    let suite_names =
      if suite then workload_names
      else match workload with Some w -> [ w ] | None -> []
    in
    let of_suite name =
      let spec = spec_of_workload name in
      (name, spec.Spec.program, spec.Spec.sim_program)
    in
    let of_file file =
      match Parser.parse_file file with
      | exception Parser.Error (msg, line, col) ->
        Format.eprintf "%s:%d:%d: %s@." file line col msg;
        exit 2
      | prog -> (file, prog, prog)
    in
    let targets = List.map of_file files @ List.map of_suite suite_names in
    if targets = [] then begin
      Printf.eprintf
        "layoutopt: locality needs something to analyze (FILE arguments, \
         --suite, or -w NAME)\n";
      exit 2
    end;
    let code =
      with_trace trace @@ fun () ->
      let reports =
        List.map (fun (_, prog, _) -> Locality.analyze prog) targets
      in
      let checked =
        if check then
          Some
            (Costcheck.run ~threshold
               (List.map
                  (fun (name, _, sim) ->
                    {
                      Costcheck.ct_name = name;
                      ct_program = sim;
                      ct_layouts = (fun _ -> None);
                    })
                  targets))
        else None
      in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                (("schema", Json.Str "memlayout-locality/1")
                :: ("targets", Json.Arr (List.map Locality.to_json reports))
                :: (match checked with
                   | Some r -> [ ("costcheck", Costcheck.to_json r) ]
                   | None -> []))))
      else begin
        List.iteri
          (fun i r ->
            if i > 0 then Format.printf "@.";
            Format.printf "%a@." Locality.pp r)
          reports;
        match checked with
        | Some r -> Format.printf "@.%a@." Costcheck.pp r
        | None -> ()
      end;
      match checked with
      | Some r -> Diagnostic.exit_code r.Costcheck.cr_diagnostics
      | None -> 0
    in
    exit code
  in
  Cmd.v
    (Cmd.info "locality"
       ~doc:
         "Static locality analysis: reuse vectors and a closed-form L1 \
          miss estimate per nest, computed from the compiled affine \
          address forms without walking an address stream.  With \
          --check, cross-validates the estimate against the cache \
          simulator and exits 1 on divergence beyond the threshold; 2 \
          on usage errors.")
    Term.(
      const run $ files_pos_arg $ suite_flag $ workload_opt_arg
      $ locality_json_flag $ check_flag $ threshold_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* trace-summary                                                        *)
(* ------------------------------------------------------------------ *)

let trace_file_arg =
  let doc = "Trace file produced by --trace." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let trace_summary_cmd =
  let run file =
    match Trace_summary.load file with
    | Error msg ->
      Format.eprintf "layoutopt: %s: %s@." file msg;
      exit 1
    | Ok summary -> Format.printf "%a@." Trace_summary.pp summary
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Summarize a --trace file (per-span totals, events, counters)")
    Term.(const run $ trace_file_arg)

(* ------------------------------------------------------------------ *)
(* verify                                                               *)
(* ------------------------------------------------------------------ *)

let proof_file_arg =
  let doc = "Certificate produced by 'solve --proof'." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROOF" ~doc)

let verify_json_flag =
  let doc =
    "Emit one memlayout-verify/1 JSON document on stdout instead of text."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let verify_cmd =
  let run file json trace =
    let code =
      with_trace trace @@ fun () ->
      let proof = Proof.read file in
      (* Everything wrong with the certificate itself — unreadable,
         unknown workload, failed replay — is a rejection (exit 1), not
         a usage error: the invocation was fine, the proof is not. *)
      let outcome =
        match proof with
        | Error msg -> Error ("unreadable proof: " ^ msg)
        | Ok p -> (
          let w = p.Proof.header.Proof.workload in
          match Suite.by_name w with
          | exception Not_found ->
            Error (Printf.sprintf "unknown workload '%s' in proof header" w)
          | spec ->
            let build =
              Trace.with_span ~cat:"verify" "build-network" (fun () ->
                  Spec.extract spec)
            in
            let net = build.Build.network in
            let costs =
              (* Optimal certificates are checked against the exact cost
                 table the search minimized, rebuilt from the static
                 locality model over the original domains. *)
              match p.Proof.verdict with
              | Some (Proof.Optimal _) ->
                let objective =
                  match p.Proof.header.Proof.objective with
                  | Some "lines" -> Optimizer.Distinct_lines
                  | _ -> Optimizer.Estimated_misses
                in
                let cost =
                  Optimizer.layout_cost ~objective spec.Spec.program
                in
                Some
                  (Array.init (Network.num_vars net) (fun i ->
                       let name = Network.name net i in
                       Array.init (Network.domain_size net i) (fun v ->
                           cost ~array_name:name
                             ~layout:(Network.value net i v))))
              | _ -> None
            in
            Trace.with_span ~cat:"verify" "check" (fun () ->
                Checker.check ?costs net p))
      in
      let verdict_label =
        match proof with
        | Error _ -> "unreadable"
        | Ok p -> (
          match p.Proof.verdict with
          | None -> "missing"
          | Some (Proof.Sat _) -> "sat"
          | Some Proof.Unsat -> "unsat"
          | Some (Proof.Optimal _) -> "optimal"
          | Some Proof.Aborted -> "aborted")
      in
      let header_field f =
        match proof with
        | Ok p -> Json.Str (f p.Proof.header)
        | Error _ -> Json.Null
      in
      let steps =
        match proof with Ok p -> List.length p.Proof.steps | Error _ -> 0
      in
      let diags =
        match outcome with
        | Ok () ->
          [
            Diagnostic.make Diagnostic.Info ~code:"proof-verified"
              ~subject:file
              (Printf.sprintf
                 "certificate accepted: workload %s, scheme %s, verdict \
                  %s, %d steps"
                 (match proof with
                 | Ok p -> p.Proof.header.Proof.workload
                 | Error _ -> "?")
                 (match proof with
                 | Ok p -> p.Proof.header.Proof.scheme
                 | Error _ -> "?")
                 verdict_label steps);
          ]
        | Error msg ->
          [
            Diagnostic.make Diagnostic.Error ~code:"proof-rejected"
              ~subject:file msg;
          ]
      in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("schema", Json.Str "memlayout-verify/1");
                  ("file", Json.Str file);
                  ("workload", header_field (fun h -> h.Proof.workload));
                  ("scheme", header_field (fun h -> h.Proof.scheme));
                  ("verdict", Json.Str verdict_label);
                  ("steps", Json.Num (float_of_int steps));
                  ( "verified",
                    Json.Bool (match outcome with Ok () -> true | _ -> false)
                  );
                  ( "diagnostics",
                    Json.Arr (List.map Diagnostic.to_json diags) );
                ]))
      else List.iter (fun d -> Format.printf "%a@." Diagnostic.pp d) diags;
      Diagnostic.exit_code diags
    in
    exit code
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check a solver certificate independently of the solvers: replay \
          its preprocessing deletions, learned nogoods and incumbents \
          against the original constraint network with the checker's own \
          propagation core, then validate the verdict.  Exits 0 when the \
          certificate is accepted, 1 when it is rejected, 2 on usage \
          errors.")
    Term.(const run $ proof_file_arg $ verify_json_flag $ trace_arg)

let all_cmd =
  let run seed max_checks =
    Format.printf "%a@.@." Tables.print_table1 (Tables.run_table1 ());
    Format.printf "%a@.@." Tables.print_table2
      (Tables.run_table2 ~seed ~max_checks ());
    Format.printf "%a@.@." Tables.print_fig4
      (Tables.run_fig4 ~seed ~max_checks ());
    Format.printf "%a@." Tables.print_table3
      (Tables.run_table3 ~seed ~max_checks ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table and figure of the paper")
    Term.(const run $ seed_arg $ max_checks_arg)

let main_cmd =
  let doc = "constraint-network based memory layout optimization (DATE'05)" in
  (* Bare [layoutopt] renders the manual (which lists every subcommand)
     instead of cmdliner's "required COMMAND is missing" usage error. *)
  Cmd.group
    ~default:Term.(ret (const (`Help (`Pager, None))))
    (Cmd.info "layoutopt" ~version:"1.0.0" ~doc)
    [ show_cmd; solve_cmd; simulate_cmd; optimize_file_cmd; lint_cmd;
      analyze_cmd; deps_cmd; locality_cmd; verify_cmd; table1_cmd;
      table2_cmd; fig4_cmd; table3_cmd; ablation_cmd; all_cmd;
      trace_summary_cmd ]

(* An unknown subcommand must die exactly like an unknown scheme does: a
   single-line error naming the alternatives, exit 2 — not cmdliner's
   multi-line usage dump with its own exit code. *)
let subcommand_names =
  [ "show"; "solve"; "simulate"; "optimize-file"; "lint"; "analyze"; "deps";
    "locality"; "verify"; "table1"; "table2"; "fig4"; "table3"; "ablation";
    "all"; "trace-summary" ]

let () =
  (if Array.length Sys.argv > 1 then
     let first = Sys.argv.(1) in
     if
       String.length first > 0
       && first.[0] <> '-'
       && not (List.mem first subcommand_names)
     then begin
       Printf.eprintf
         "layoutopt: unknown command '%s' (valid commands: %s)\n" first
         (String.concat ", " subcommand_names);
       exit 2
     end);
  (* Same contract for every other usage error (unknown flags, missing
     arguments): cmdliner would dump multi-line usage and exit 124 —
     capture its stderr and keep only the one-line error, exit 2. *)
  let err_buf = Buffer.create 256 in
  let err_ppf = Format.formatter_of_buffer err_buf in
  let code = Cmd.eval ~err:err_ppf main_cmd in
  Format.pp_print_flush err_ppf ();
  if code = Cmd.Exit.cli_error then begin
    (match String.split_on_char '\n' (Buffer.contents err_buf) with
    | first :: _ when String.trim first <> "" -> prerr_endline first
    | _ -> prerr_endline "layoutopt: usage error");
    exit 2
  end
  else begin
    prerr_string (Buffer.contents err_buf);
    exit code
  end
